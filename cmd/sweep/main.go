// Command sweep runs one scenario across a swept parameter and emits CSV,
// the workhorse for custom parameter studies beyond the paper's figures.
//
// Examples:
//
//	sweep -scenario routing -param agents  -values 10,25,50,100,200
//	sweep -scenario routing -param history -values 4,8,16,32 -communicate
//	sweep -scenario mapping -param agents  -values 1,2,5,10,20 -stigmergy
//	sweep -scenario mapping -param epsilon -values 0,0.1,0.2 -policy super
//	sweep -scenario routing -param agents -values 10,50,100 -pointworkers 4 -runworkers 2
//	sweep -scenario routing -param agents -values 50,100 -faults churn
//	sweep -scenario routing -param agents -values 50,100 -faults partition -communicate
//	sweep -scenario mapping -param agents -values 5,15 -faults churn
//	sweep -scenario routing -param agents -values 50,100 -worldcache=0   # force live stepping
//
// By default the swept world's evolution is recorded once (positions,
// link churn, fault transitions) and replayed for every point and run —
// bit-identical CSV at a fraction of the world-step cost. -worldcache=0
// re-steps the world live for every run instead.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"
	"sync"

	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/mapping"
	"repro/internal/metrics"
	"repro/internal/netgen"
	"repro/internal/network"
	"repro/internal/parallel"
	"repro/internal/routing"
)

func main() {
	var (
		scenario     = flag.String("scenario", "routing", "mapping | routing")
		param        = flag.String("param", "agents", "mapping: agents|epsilon|memory; routing: agents|history")
		values       = flag.String("values", "", "comma-separated sweep values (required)")
		policy       = flag.String("policy", "", "agent policy (default: conscientious / oldest)")
		cooperate    = flag.Bool("cooperate", true, "mapping: exchange maps in meetings")
		communicate  = flag.Bool("communicate", false, "routing: exchange best route in meetings")
		stigmergy    = flag.Bool("stigmergy", false, "use footprints")
		runs         = flag.Int("runs", 10, "independent runs per value")
		seed         = flag.Uint64("seed", 1, "root seed")
		workers      = flag.Int("workers", runtime.NumCPU(), "simulation workers")
		runWorkers   = flag.Int("runworkers", 1, "concurrent independent runs per point (aggregates are identical at any value)")
		shardWorkers = flag.Int("shardworkers", 1, "concurrent spatial shards per world step (topologies are identical at any value)")
		pointWorkers = flag.Int("pointworkers", 1, "concurrent sweep points (rows still emitted in sweep order)")
		worldCache   = flag.Bool("worldcache", true, "record the world trajectory once and replay it for every point and run (results are bit-identical)")
		faultPreset  = flag.String("faults", "", "fault preset to inject (churn|gwfail|partition|degrade|blackout)")
		strandedKill = flag.Bool("strandedkill", false, "routing: remove stranded agents instead of respawning them")
		metricsFile  = flag.String("metrics", "", "dump the whole-sweep metrics snapshot to this file (Prometheus text; .json for JSON)")
		httpAddr     = flag.String("http", "", "serve /metrics, expvar and pprof on this address (e.g. :6060) while sweeping")
	)
	flag.Parse()
	if *values == "" {
		fmt.Fprintln(os.Stderr, "sweep: -values is required")
		os.Exit(2)
	}
	vals, err := parseValues(*values)
	if err != nil {
		fmt.Fprintln(os.Stderr, "sweep:", err)
		os.Exit(2)
	}

	// Every point runs against a private registry (so per-point counter
	// columns stay race-free under -pointworkers), and completed points
	// are merged into this sweep-wide registry in sweep order — the view
	// the -http endpoints and the -metrics dump serve.
	reg := metrics.NewRegistry()
	if *httpAddr != "" {
		addr, err := metrics.StartServer(*httpAddr, reg)
		if err != nil {
			fmt.Fprintln(os.Stderr, "sweep:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "serving metrics/expvar/pprof on http://%s\n", addr)
	}
	cfg := sweepConfig{
		runs: *runs, seed: *seed,
		workers: *workers, runWorkers: *runWorkers, shardWorkers: *shardWorkers,
		pointWorkers: *pointWorkers, worldCache: *worldCache,
		faultPreset: *faultPreset, strandedKill: *strandedKill,
		reg: reg,
	}
	switch *scenario {
	case "mapping":
		err = sweepMapping(*param, vals, *policy, *cooperate, *stigmergy, cfg)
	case "routing":
		err = sweepRouting(*param, vals, *policy, *communicate, *stigmergy, cfg)
	default:
		err = fmt.Errorf("unknown scenario %q", *scenario)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "sweep:", err)
		os.Exit(1)
	}
	if *metricsFile != "" {
		if err := metrics.WriteFile(reg, *metricsFile); err != nil {
			fmt.Fprintln(os.Stderr, "sweep:", err)
			os.Exit(1)
		}
	}
}

// sweepConfig carries the execution knobs shared by both sweeps.
type sweepConfig struct {
	runs         int
	seed         uint64
	workers      int
	runWorkers   int
	shardWorkers int
	pointWorkers int
	worldCache   bool
	faultPreset  string
	strandedKill bool
	reg          *metrics.Registry
}

// emitter streams completed point rows in sweep order: a point parks its
// row and private registry in its slot, and whoever holds the lock
// flushes the done prefix — printing rows and merging registries without
// ever reordering or racing them.
type emitter struct {
	mu   sync.Mutex
	rows []string
	regs []*metrics.Registry
	done []bool
	next int
	dst  *metrics.Registry
}

func newEmitter(n int, dst *metrics.Registry) *emitter {
	return &emitter{
		rows: make([]string, n),
		regs: make([]*metrics.Registry, n),
		done: make([]bool, n),
		dst:  dst,
	}
}

func (e *emitter) emit(i int, row string, reg *metrics.Registry) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.rows[i], e.regs[i], e.done[i] = row, reg, true
	for e.next < len(e.done) && e.done[e.next] {
		fmt.Print(e.rows[e.next])
		e.dst.Merge(e.regs[e.next])
		e.rows[e.next], e.regs[e.next] = "", nil
		e.next++
	}
}

// counterValues reads the named counters out of one point's private
// registry snapshot. The registry is born at the point, so totals ARE the
// per-point deltas.
func counterValues(s *metrics.Snapshot, names ...string) []uint64 {
	out := make([]uint64, len(names))
	for i, name := range names {
		out[i] = s.Counter(name)
	}
	return out
}

func parseValues(s string) ([]float64, error) {
	parts := strings.Split(s, ",")
	out := make([]float64, 0, len(parts))
	for _, p := range parts {
		v, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
		if err != nil {
			return nil, fmt.Errorf("bad value %q: %w", p, err)
		}
		out = append(out, v)
	}
	return out, nil
}

func sweepMapping(param string, vals []float64, policy string, cooperate, stigmergy bool, cfg sweepConfig) error {
	kind := core.PolicyConscientious
	switch policy {
	case "", "conscientious":
	case "random":
		kind = core.PolicyRandom
	case "super", "super-conscientious":
		kind = core.PolicySuperConscientious
	default:
		return fmt.Errorf("unknown mapping policy %q", policy)
	}
	const maxSteps = 200000
	pool := parallel.NewPool(cfg.pointWorkers)
	build := func() (*network.World, error) {
		return netgen.Generate(netgen.Mapping300(), cfg.seed)
	}
	w, err := build()
	if err != nil {
		return err
	}
	// One immutable schedule drives every point and run. The preset horizon
	// is capped well below the step budget: mapping runs finish in hundreds
	// of steps, so a schedule spread over all 200k would fire almost every
	// event after the map is already complete.
	var sched *faults.Schedule
	if cfg.faultPreset != "" {
		horizon := maxSteps
		if horizon > 2000 {
			horizon = 2000
		}
		sched, err = faults.Preset(cfg.faultPreset, w.N(), w.Gateways(), horizon, cfg.seed)
		if err != nil {
			return err
		}
	}
	// The mapping network is static, but concurrent points or runs — and
	// any faulted run, whose schedule fires at absolute world steps — each
	// need their own world.
	var worldFor func(int) (*network.World, error)
	switch {
	case cfg.worldCache && cfg.runs*len(vals) > 1:
		// Record the world's trajectory once; every point and run replays
		// it bit-identically in O(changes) per step.
		src := network.NewTrajectorySource(maxSteps, 0, sched, build)
		worldFor = src.WorldFor
	case pool.Parallel() || cfg.runWorkers > 1 || sched != nil:
		// Clone the generated world through the snapshot machinery — a
		// bit-identical topology without re-running netgen's placement and
		// range search per run.
		snap := w.Snapshot()
		worldFor = func(int) (*network.World, error) { return snap.World() }
	default:
		worldFor = func(int) (*network.World, error) { return w, nil }
	}
	fmt.Printf("%s,finish_mean,finish_ci95,finish_min,finish_max,completed,runs,moves,meetings,topo_records,stranded,faults_injected,faults_recovered\n", param)
	em := newEmitter(len(vals), cfg.reg)
	return pool.Run(len(vals), func(i int) error {
		v := vals[i]
		preg := metrics.NewRegistry()
		sc := mapping.Scenario{
			Agents: 15, Kind: kind, Cooperate: cooperate, Stigmergy: stigmergy,
			MaxSteps: maxSteps, Faults: sched,
			Workers: cfg.workers, RunWorkers: cfg.runWorkers,
			ShardWorkers: cfg.shardWorkers, Metrics: preg,
		}
		switch param {
		case "agents":
			sc.Agents = int(v)
		case "epsilon":
			sc.Epsilon = v
		case "memory":
			sc.VisitCapacity = int(v)
		default:
			return fmt.Errorf("unknown mapping param %q", param)
		}
		agg, err := mapping.RunMany(worldFor, sc, cfg.runs, cfg.seed+uint64(v*1000))
		if err != nil {
			return err
		}
		d := counterValues(preg.Snapshot(nil),
			"mapping_moves_total", "mapping_meetings_total", "mapping_topo_records_merged_total",
			"faults_injected_total", "faults_recovered_total")
		em.emit(i, fmt.Sprintf("%g,%.1f,%.1f,%.0f,%.0f,%d,%d,%d,%d,%d,%d,%d,%d\n",
			v, agg.Finish.Mean, agg.Finish.CI, agg.Finish.Min, agg.Finish.Max,
			agg.Completed, agg.Runs, d[0], d[1], d[2], agg.Stranded, d[3], d[4]), preg)
		return nil
	})
}

func sweepRouting(param string, vals []float64, policy string, communicate, stigmergy bool, cfg sweepConfig) error {
	kind := core.PolicyOldestNode
	switch policy {
	case "", "oldest", "oldest-node":
	case "random":
		kind = core.PolicyRandom
	default:
		return fmt.Errorf("unknown routing policy %q", policy)
	}
	const steps = 300
	build := func() (*network.World, error) {
		return netgen.Generate(netgen.Routing250(), cfg.seed)
	}
	// One immutable schedule drives every point and run: the fault workload
	// is held fixed while the swept parameter varies.
	var sched *faults.Schedule
	if cfg.faultPreset != "" {
		probe, err := build()
		if err != nil {
			return err
		}
		sched, err = faults.Preset(cfg.faultPreset, probe.N(), probe.Gateways(), steps, cfg.seed)
		if err != nil {
			return err
		}
	}
	// Every point and run sees the same world evolution. With the world
	// cache on, it is recorded once and replayed bit-identically in
	// O(changes) per step; otherwise each run re-steps it live.
	var worldFor func(int) (*network.World, error)
	if cfg.worldCache && cfg.runs*len(vals) > 1 {
		src := network.NewTrajectorySource(steps, 0, sched, build)
		worldFor = src.WorldFor
	} else {
		worldFor = func(int) (*network.World, error) { return build() }
	}
	fmt.Printf("%s,connectivity_mean,connectivity_ci95,end_to_end,stability_std,stale_mean,"+
		"reconv_mean,reconv_e2e_mean,floor_mean,floor_e2e_mean,recovered,censored,stranded,"+
		"runs,moves,meetings,deposits,adoptions\n", param)
	pool := parallel.NewPool(cfg.pointWorkers)
	em := newEmitter(len(vals), cfg.reg)
	return pool.Run(len(vals), func(i int) error {
		v := vals[i]
		preg := metrics.NewRegistry()
		sc := routing.Scenario{
			Agents: 100, Kind: kind, Communicate: communicate, Stigmergy: stigmergy,
			Steps: steps, Faults: sched,
			Workers: cfg.workers, RunWorkers: cfg.runWorkers,
			ShardWorkers: cfg.shardWorkers, Metrics: preg,
		}
		if cfg.strandedKill {
			sc.StrandedPolicy = routing.StrandedKill
		}
		switch param {
		case "agents":
			sc.Agents = int(v)
		case "history":
			sc.HistorySize = int(v)
		default:
			return fmt.Errorf("unknown routing param %q", param)
		}
		agg, err := routing.RunMany(worldFor, sc, cfg.runs, cfg.seed+uint64(v*1000))
		if err != nil {
			return err
		}
		d := counterValues(preg.Snapshot(nil),
			"routing_moves_total", "routing_meetings_total",
			"routing_deposits_total", "routing_route_adoptions_total")
		em.emit(i, fmt.Sprintf("%g,%.4f,%.4f,%.4f,%.4f,%.2f,%.2f,%.2f,%.4f,%.4f,%d,%d,%d,%d,%d,%d,%d,%d\n",
			v, agg.Mean.Mean, agg.Mean.CI, agg.EndToEnd.Mean, agg.Stability,
			agg.MeanStaleness, agg.Reconv.Mean, agg.ReconvE2E.Mean,
			agg.Floor.Mean, agg.FloorE2E.Mean, agg.Recovered, agg.Censored, agg.Stranded,
			agg.Runs, d[0], d[1], d[2], d[3]), preg)
		return nil
	})
}
