// Command sweep runs one scenario across a swept parameter and emits CSV,
// the workhorse for custom parameter studies beyond the paper's figures.
//
// Examples:
//
//	sweep -scenario routing -param agents  -values 10,25,50,100,200
//	sweep -scenario routing -param history -values 4,8,16,32 -communicate
//	sweep -scenario mapping -param agents  -values 1,2,5,10,20 -stigmergy
//	sweep -scenario mapping -param epsilon -values 0,0.1,0.2 -policy super
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"

	"repro/internal/core"
	"repro/internal/mapping"
	"repro/internal/metrics"
	"repro/internal/netgen"
	"repro/internal/network"
	"repro/internal/routing"
)

func main() {
	var (
		scenario    = flag.String("scenario", "routing", "mapping | routing")
		param       = flag.String("param", "agents", "mapping: agents|epsilon|memory; routing: agents|history")
		values      = flag.String("values", "", "comma-separated sweep values (required)")
		policy      = flag.String("policy", "", "agent policy (default: conscientious / oldest)")
		cooperate   = flag.Bool("cooperate", true, "mapping: exchange maps in meetings")
		communicate = flag.Bool("communicate", false, "routing: exchange best route in meetings")
		stigmergy   = flag.Bool("stigmergy", false, "use footprints")
		runs        = flag.Int("runs", 10, "independent runs per value")
		seed        = flag.Uint64("seed", 1, "root seed")
		workers     = flag.Int("workers", runtime.NumCPU(), "simulation workers")
		metricsFile = flag.String("metrics", "", "dump the whole-sweep metrics snapshot to this file (Prometheus text; .json for JSON)")
	)
	flag.Parse()
	if *values == "" {
		fmt.Fprintln(os.Stderr, "sweep: -values is required")
		os.Exit(2)
	}
	vals, err := parseValues(*values)
	if err != nil {
		fmt.Fprintln(os.Stderr, "sweep:", err)
		os.Exit(2)
	}

	// One registry accumulates across the whole sweep; per-point columns
	// come from counter deltas between snapshots taken around each point.
	reg := metrics.NewRegistry()
	switch *scenario {
	case "mapping":
		err = sweepMapping(*param, vals, *policy, *cooperate, *stigmergy, *runs, *seed, *workers, reg)
	case "routing":
		err = sweepRouting(*param, vals, *policy, *communicate, *stigmergy, *runs, *seed, *workers, reg)
	default:
		err = fmt.Errorf("unknown scenario %q", *scenario)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "sweep:", err)
		os.Exit(1)
	}
	if *metricsFile != "" {
		if err := metrics.WriteFile(reg, *metricsFile); err != nil {
			fmt.Fprintln(os.Stderr, "sweep:", err)
			os.Exit(1)
		}
	}
}

// counterDeltas returns per-point growth of the named counters between two
// snapshots of the sweep-wide registry.
func counterDeltas(before, after *metrics.Snapshot, names ...string) []uint64 {
	out := make([]uint64, len(names))
	for i, name := range names {
		out[i] = after.Counter(name) - before.Counter(name)
	}
	return out
}

func parseValues(s string) ([]float64, error) {
	parts := strings.Split(s, ",")
	out := make([]float64, 0, len(parts))
	for _, p := range parts {
		v, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
		if err != nil {
			return nil, fmt.Errorf("bad value %q: %w", p, err)
		}
		out = append(out, v)
	}
	return out, nil
}

func sweepMapping(param string, vals []float64, policy string, cooperate, stigmergy bool, runs int, seed uint64, workers int, reg *metrics.Registry) error {
	kind := core.PolicyConscientious
	switch policy {
	case "", "conscientious":
	case "random":
		kind = core.PolicyRandom
	case "super", "super-conscientious":
		kind = core.PolicySuperConscientious
	default:
		return fmt.Errorf("unknown mapping policy %q", policy)
	}
	w, err := netgen.Generate(netgen.Mapping300(), seed)
	if err != nil {
		return err
	}
	static := func(int) (*network.World, error) { return w, nil }
	fmt.Printf("%s,finish_mean,finish_ci95,finish_min,finish_max,completed,runs,moves,meetings,topo_records\n", param)
	var before, after metrics.Snapshot
	for _, v := range vals {
		sc := mapping.Scenario{
			Agents: 15, Kind: kind, Cooperate: cooperate, Stigmergy: stigmergy,
			MaxSteps: 200000, Workers: workers, Metrics: reg,
		}
		switch param {
		case "agents":
			sc.Agents = int(v)
		case "epsilon":
			sc.Epsilon = v
		case "memory":
			sc.VisitCapacity = int(v)
		default:
			return fmt.Errorf("unknown mapping param %q", param)
		}
		reg.Snapshot(&before)
		agg, err := mapping.RunMany(static, sc, runs, seed+uint64(v*1000))
		if err != nil {
			return err
		}
		reg.Snapshot(&after)
		d := counterDeltas(&before, &after,
			"mapping_moves_total", "mapping_meetings_total", "mapping_topo_records_merged_total")
		fmt.Printf("%g,%.1f,%.1f,%.0f,%.0f,%d,%d,%d,%d,%d\n",
			v, agg.Finish.Mean, agg.Finish.CI, agg.Finish.Min, agg.Finish.Max,
			agg.Completed, agg.Runs, d[0], d[1], d[2])
	}
	return nil
}

func sweepRouting(param string, vals []float64, policy string, communicate, stigmergy bool, runs int, seed uint64, workers int, reg *metrics.Registry) error {
	kind := core.PolicyOldestNode
	switch policy {
	case "", "oldest", "oldest-node":
	case "random":
		kind = core.PolicyRandom
	default:
		return fmt.Errorf("unknown routing policy %q", policy)
	}
	worldFor := func(int) (*network.World, error) {
		return netgen.Generate(netgen.Routing250(), seed)
	}
	fmt.Printf("%s,connectivity_mean,connectivity_ci95,end_to_end,stability_std,runs,moves,meetings,deposits,adoptions\n", param)
	var before, after metrics.Snapshot
	for _, v := range vals {
		sc := routing.Scenario{
			Agents: 100, Kind: kind, Communicate: communicate, Stigmergy: stigmergy,
			Workers: workers, Metrics: reg,
		}
		switch param {
		case "agents":
			sc.Agents = int(v)
		case "history":
			sc.HistorySize = int(v)
		default:
			return fmt.Errorf("unknown routing param %q", param)
		}
		reg.Snapshot(&before)
		agg, err := routing.RunMany(worldFor, sc, runs, seed+uint64(v*1000))
		if err != nil {
			return err
		}
		reg.Snapshot(&after)
		d := counterDeltas(&before, &after,
			"routing_moves_total", "routing_meetings_total",
			"routing_deposits_total", "routing_route_adoptions_total")
		fmt.Printf("%g,%.4f,%.4f,%.4f,%.4f,%d,%d,%d,%d,%d\n",
			v, agg.Mean.Mean, agg.Mean.CI, agg.EndToEnd.Mean, agg.Stability, agg.Runs,
			d[0], d[1], d[2], d[3])
	}
	return nil
}
