// Command watch renders a routing run as animated terminal frames: the
// arena as a heat map of which nodes currently hold a live gateway route
// (gateways drawn as G), with the connectivity sparkline underneath. It
// is the closest thing this reproduction has to the paper's Java
// "graphical view".
//
//	go run ./cmd/watch                       # defaults: 100 oldest-node agents
//	go run ./cmd/watch -communicate          # watch the Fig 11 chasing collapse
//	go run ./cmd/watch -communicate -stigmergy
//	go run ./cmd/watch -faults blackout      # watch churn + gateway failures + a partition
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/metrics"
	"repro/internal/netgen"
	"repro/internal/network"
	"repro/internal/routing"
	"repro/internal/viz"
)

func main() {
	var (
		agents       = flag.Int("agents", 100, "agent population")
		policy       = flag.String("policy", "oldest", "random | oldest")
		communicate  = flag.Bool("communicate", false, "exchange best route in meetings")
		stigmergy    = flag.Bool("stigmergy", false, "use footprints")
		steps        = flag.Int("steps", 300, "steps to simulate")
		every        = flag.Int("every", 10, "render a frame every N steps")
		delay        = flag.Duration("delay", 120*time.Millisecond, "pause between frames")
		seed         = flag.Uint64("seed", 1, "world + placement seed")
		cols         = flag.Int("cols", 72, "heat map columns")
		rows         = flag.Int("rows", 24, "heat map rows")
		httpAddr     = flag.String("http", "", "serve /metrics, expvar and pprof on this address (e.g. :6060) while running")
		shardWorkers = flag.Int("shardworkers", 1, "concurrent spatial shards per world step (frames are identical at any value)")
		faultPreset  = flag.String("faults", "", "fault preset to inject (churn|gwfail|partition|degrade|blackout)")
	)
	flag.Parse()

	kind := core.PolicyOldestNode
	if *policy == "random" {
		kind = core.PolicyRandom
	}
	w, err := netgen.Generate(netgen.Routing250(), *seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, "watch:", err)
		os.Exit(1)
	}

	reg := metrics.NewRegistry()
	if *httpAddr != "" {
		addr, err := metrics.StartServer(*httpAddr, reg)
		if err != nil {
			fmt.Fprintln(os.Stderr, "watch:", err)
			os.Exit(1)
		}
		fmt.Printf("serving metrics/expvar/pprof on http://%s\n", addr)
	}

	var sched *faults.Schedule
	if *faultPreset != "" {
		sched, err = faults.Preset(*faultPreset, w.N(), w.Gateways(), *steps, *seed)
		if err != nil {
			fmt.Fprintln(os.Stderr, "watch:", err)
			os.Exit(2)
		}
	}

	var series []float64
	var snap metrics.Snapshot
	sc := routing.Scenario{
		Agents:       *agents,
		Kind:         kind,
		Communicate:  *communicate,
		Stigmergy:    *stigmergy,
		Steps:        *steps,
		ShardWorkers: *shardWorkers,
		Faults:       sched,
		Metrics:      reg,
		Observer: func(step int, w *network.World, tables *routing.Tables) {
			series = append(series, routing.LocalConnectivity(w, tables))
			if step%*every != 0 {
				return
			}
			reach := routing.ReachSet(w, tables)
			values := make([]float64, w.N())
			for u := range values {
				if reach[u] {
					values[u] = 1
				} else if tables.At(network.NodeID(u)).Len() > 0 {
					values[u] = 0.4 // has a route, but it no longer reaches
				}
			}
			fmt.Print("\033[H\033[2J") // clear screen, home cursor
			fmt.Printf("step %3d  agents=%d policy=%s comm=%v stig=%v   (@ = gateway-reaching, - = stale route, G = gateway)\n",
				step, *agents, kind, *communicate, *stigmergy)
			fmt.Print(viz.Heatmap(w, values, *cols, *rows))
			fmt.Printf("connectivity %.3f\n%s\n", series[len(series)-1], viz.Sparkline(series, *cols))
			reg.Snapshot(&snap)
			fmt.Printf("metrics: moves=%d meetings=%d deposits=%d adoptions=%d evictions=%d links+%d/-%d\n",
				snap.Counter("routing_moves_total"), snap.Counter("routing_meetings_total"),
				snap.Counter("routing_deposits_total"), snap.Counter("routing_route_adoptions_total"),
				snap.Counter("routing_route_evictions_total"),
				snap.Counter("world_links_added_total"), snap.Counter("world_links_removed_total"))
			if sched != nil {
				part := ""
				if _, active := w.Partition(); active {
					part = "  PARTITION ACTIVE"
				}
				fmt.Printf("faults:  injected=%d recovered=%d nodes_down=%.0f stranded=%d purged=%d%s\n",
					snap.Counter("faults_injected_total"), snap.Counter("faults_recovered_total"),
					snap.Gauge("faults_nodes_down"), snap.Counter("faults_stranded_agents_total"),
					snap.Counter("faults_routes_purged_total"), part)
			}
			time.Sleep(*delay)
		},
	}
	if _, err := routing.Run(w, sc, *seed); err != nil {
		fmt.Fprintln(os.Stderr, "watch:", err)
		os.Exit(1)
	}
	fmt.Println("done")
}
