// Command netgen synthesises and inspects the wireless worlds the
// experiments run on.
//
// Examples:
//
//	netgen -preset mapping                 # the 300-node mapping network
//	netgen -preset routing -steps 100      # MANET, evolved 100 steps
//	netgen -nodes 120 -edges 960 -gateways 8 -dot > world.dot
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/netgen"
	"repro/internal/network"
)

func main() {
	var (
		preset   = flag.String("preset", "", "mapping | routing (overrides size flags)")
		nodes    = flag.Int("nodes", 100, "network size")
		edges    = flag.Int("edges", 700, "target directed edge count")
		arena    = flag.Float64("arena", 100, "arena side length")
		spread   = flag.Float64("spread", 0.25, "radio range spread")
		gateways = flag.Int("gateways", 0, "gateway count")
		seed     = flag.Uint64("seed", 1, "generation seed")
		steps    = flag.Int("steps", 0, "evolve the world this many steps before reporting")
		dot      = flag.Bool("dot", false, "emit the topology as Graphviz DOT on stdout")
		save     = flag.String("save", "", "write a JSON snapshot of the world to this file")
		load     = flag.String("load", "", "load a JSON snapshot instead of generating")
	)
	flag.Parse()

	var spec netgen.Spec
	switch *preset {
	case "mapping":
		spec = netgen.Mapping300()
	case "routing":
		spec = netgen.Routing250()
	case "":
		spec = netgen.Spec{
			N: *nodes, TargetEdges: *edges, ArenaSide: *arena,
			RangeSpread: *spread, Gateways: *gateways, RangeBoost: 1.5,
		}
	default:
		fmt.Fprintf(os.Stderr, "netgen: unknown preset %q\n", *preset)
		os.Exit(2)
	}

	var w *network.World
	var err error
	if *load != "" {
		f, ferr := os.Open(*load)
		if ferr != nil {
			fmt.Fprintln(os.Stderr, "netgen:", ferr)
			os.Exit(1)
		}
		w, err = network.ReadSnapshot(f)
		f.Close()
	} else {
		w, err = netgen.Generate(spec, *seed)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "netgen:", err)
		os.Exit(1)
	}
	for i := 0; i < *steps; i++ {
		w.Step()
	}
	fmt.Fprintln(os.Stderr, netgen.Describe(w))
	fmt.Fprintf(os.Stderr, "physical gateway connectivity: %.3f\n", w.ConnectivityToGateways())

	if *save != "" {
		f, ferr := os.Create(*save)
		if ferr != nil {
			fmt.Fprintln(os.Stderr, "netgen:", ferr)
			os.Exit(1)
		}
		if err := network.WriteSnapshot(w, f); err != nil {
			fmt.Fprintln(os.Stderr, "netgen:", err)
			os.Exit(1)
		}
		if err := f.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "netgen:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "snapshot written to %s\n", *save)
	}

	if *dot {
		emitDOT(w)
	}
}

// emitDOT writes the current topology as a Graphviz digraph with node
// positions, suitable for neato -n.
func emitDOT(w *network.World) {
	fmt.Println("digraph world {")
	fmt.Println("  node [shape=point];")
	for u := 0; u < w.N(); u++ {
		p := w.Pos(network.NodeID(u))
		attrs := fmt.Sprintf("pos=\"%.1f,%.1f!\"", p.X, p.Y)
		if w.IsGateway(network.NodeID(u)) {
			attrs += ", color=red, shape=circle, width=0.3"
		}
		fmt.Printf("  n%d [%s];\n", u, attrs)
	}
	g := w.Topology()
	for u := 0; u < w.N(); u++ {
		for _, v := range g.Out(network.NodeID(u)) {
			fmt.Printf("  n%d -> n%d;\n", u, v)
		}
	}
	fmt.Println("}")
}
