// Command routing runs the dynamic-routing scenario with full parameter
// control — the knob-level companion to `figures`.
//
// Examples:
//
//	routing -agents 100 -policy oldest
//	routing -agents 100 -policy oldest -communicate          # Fig 11's pathology
//	routing -agents 100 -policy oldest -communicate -stigmergy
//	routing -agents 50 -history 8 -curve
//	routing -agents 100 -faults blackout             # churn + gateway failures + a partition
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"

	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/metrics"
	"repro/internal/netgen"
	"repro/internal/network"
	"repro/internal/replay"
	"repro/internal/routing"
	"repro/internal/stats"
	"repro/internal/trace"
)

func main() {
	var (
		nodes        = flag.Int("nodes", 250, "network size")
		edges        = flag.Int("edges", 2000, "target directed edge count")
		gateways     = flag.Int("gateways", 12, "gateway count")
		mobile       = flag.Float64("mobile", 0.5, "fraction of non-gateway nodes that move")
		minSpeed     = flag.Float64("minspeed", 0.1, "minimum node speed")
		maxSpeed     = flag.Float64("maxspeed", 0.5, "maximum node speed")
		agents       = flag.Int("agents", 100, "agent population")
		policy       = flag.String("policy", "oldest", "random | oldest")
		communicate  = flag.Bool("communicate", false, "exchange best route when agents meet")
		stigmergy    = flag.Bool("stigmergy", false, "leave and respect footprints")
		history      = flag.Int("history", 32, "agent history size (trail + visit memory)")
		steps        = flag.Int("steps", 300, "steps per run")
		runs         = flag.Int("runs", 40, "independent runs")
		seed         = flag.Uint64("seed", 1, "root seed (world trace and placements)")
		workers      = flag.Int("workers", runtime.NumCPU(), "simulation workers")
		runWorkers   = flag.Int("runworkers", 1, "concurrent independent runs (aggregates are identical at any value)")
		shardWorkers = flag.Int("shardworkers", 1, "concurrent spatial shards per world step (topologies are identical at any value)")
		faultPreset  = flag.String("faults", "", "fault preset to inject (churn|gwfail|partition|degrade|blackout)")
		strandedKill = flag.Bool("strandedkill", false, "remove stranded agents instead of respawning them")
		curve        = flag.Bool("curve", false, "print averaged connectivity curve as TSV")
		traceFile    = flag.String("trace", "", "write a JSONL event trace of ONE run to this file")
		binlogFile   = flag.String("binlog", "", "write a binary event+world log of ONE run to this file (replayable with cmd/replay)")
		anchorEvery  = flag.Int("anchorevery", network.DefaultAnchorEvery, "snapshot anchor cadence in the binary log")
		metricsFile  = flag.String("metrics", "", "dump a metrics snapshot to this file (Prometheus text; .json for JSON)")
		httpAddr     = flag.String("http", "", "serve /metrics, expvar and pprof on this address (e.g. :6060) while running")
	)
	flag.Parse()

	kind, err := parsePolicy(*policy)
	if err != nil {
		fmt.Fprintln(os.Stderr, "routing:", err)
		os.Exit(2)
	}
	spec := netgen.Routing250()
	spec.N = *nodes
	spec.TargetEdges = *edges
	spec.Gateways = *gateways
	spec.MobileFraction = *mobile
	spec.MinSpeed = *minSpeed
	spec.MaxSpeed = *maxSpeed

	build := func() (*network.World, error) { return netgen.Generate(spec, *seed) }
	worldFor := func(int) (*network.World, error) { return build() }
	w, err := build()
	if err != nil {
		fmt.Fprintln(os.Stderr, "routing:", err)
		os.Exit(1)
	}
	fmt.Println("network:", netgen.Describe(w))

	sc := routing.Scenario{
		Agents:       *agents,
		Kind:         kind,
		Communicate:  *communicate,
		Stigmergy:    *stigmergy,
		HistorySize:  *history,
		Steps:        *steps,
		Workers:      *workers,
		RunWorkers:   *runWorkers,
		ShardWorkers: *shardWorkers,
	}
	if *faultPreset != "" {
		sched, err := faults.Preset(*faultPreset, w.N(), w.Gateways(), *steps, *seed)
		if err != nil {
			fmt.Fprintln(os.Stderr, "routing:", err)
			os.Exit(2)
		}
		sc.Faults = sched
		if *strandedKill {
			sc.StrandedPolicy = routing.StrandedKill
		}
		fmt.Printf("faults: preset=%s events=%d\n", *faultPreset, sched.Len())
	}
	var reg *metrics.Registry
	if *metricsFile != "" || *httpAddr != "" {
		reg = metrics.NewRegistry()
		sc.Metrics = reg
	}
	if *httpAddr != "" {
		addr, err := metrics.StartServer(*httpAddr, reg)
		if err != nil {
			fmt.Fprintln(os.Stderr, "routing:", err)
			os.Exit(1)
		}
		fmt.Printf("serving metrics/expvar/pprof on http://%s\n", addr)
	}
	if *traceFile != "" {
		if err := traceOneRun(*traceFile, worldFor, sc, *seed); err != nil {
			fmt.Fprintln(os.Stderr, "routing:", err)
			os.Exit(1)
		}
		fmt.Printf("trace of one run written to %s\n", *traceFile)
	}
	if *binlogFile != "" {
		meta := replay.RunMeta{
			Scenario:    "routing",
			Spec:        spec,
			WorldSeed:   *seed,
			Seed:        *seed,
			Steps:       *steps,
			FaultPreset: *faultPreset,
			AnchorEvery: *anchorEvery,
		}
		n, err := recordOneRun(*binlogFile, meta, worldFor, sc, *seed)
		if err != nil {
			fmt.Fprintln(os.Stderr, "routing:", err)
			os.Exit(1)
		}
		fmt.Printf("binary log of one run written to %s (%d events)\n", *binlogFile, n)
	}
	// Record the world trajectory once and replay it for every run —
	// bit-identical to stepping each run's world live.
	agg, err := routing.RunManyCached(build, sc, *runs, *seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, "routing:", err)
		os.Exit(1)
	}

	fmt.Printf("agents=%d policy=%s communicate=%v stigmergy=%v history=%d runs=%d\n",
		*agents, kind, *communicate, *stigmergy, *history, *runs)
	fmt.Printf("connectivity (post-convergence): %s\n", agg.Mean)
	fmt.Printf("end-to-end connectivity: %s\n", agg.EndToEnd)
	fmt.Printf("within-run stability (std): %.4f\n", agg.Stability)
	fmt.Printf("overhead: moves=%d meetings=%d deposits=%d adoptions=%d marks=%d\n",
		agg.Overhead.Moves, agg.Overhead.Meetings, agg.Overhead.RouteDeposits,
		agg.Overhead.TrailAdoptions, agg.Overhead.MarksLeft)
	if *faultPreset != "" {
		fmt.Printf("route staleness (mean age, steps): %.2f\n", agg.MeanStaleness)
		fmt.Printf("reconvergence: local %.2f steps, end-to-end %.2f steps (%d/%d events recovered)\n",
			agg.Reconv.Mean, agg.ReconvE2E.Mean, agg.Recovered, agg.Recovered+agg.Censored)
		fmt.Printf("connectivity floor: local %.4f, end-to-end %.4f\n",
			agg.Floor.Mean, agg.FloorE2E.Mean)
		fmt.Printf("stranded agents: %d\n", agg.Stranded)
	}
	if *metricsFile != "" {
		if err := metrics.WriteFile(reg, *metricsFile); err != nil {
			fmt.Fprintln(os.Stderr, "routing:", err)
			os.Exit(1)
		}
		fmt.Printf("metrics snapshot written to %s\n", *metricsFile)
	}

	if *curve {
		fmt.Println("\nstep\tconnectivity\tphysical-upper-bound")
		stride := len(agg.AvgSeries) / 200
		if stride < 1 {
			stride = 1
		}
		conn := stats.Downsample(agg.AvgSeries, stride)
		ideal := stats.Downsample(agg.AvgIdeal, stride)
		for i := range conn {
			id := 0.0
			if i < len(ideal) {
				id = ideal[i]
			}
			fmt.Printf("%d\t%.4f\t%.4f\n", i*stride, conn[i], id)
		}
	}
}

// recordOneRun executes a single sequential run recorded into a binary
// log at path (snapshot anchors + world deltas + events), returning the
// event count. The sidecar index lands at path+".idx".
func recordOneRun(path string, meta replay.RunMeta, worldFor func(int) (*network.World, error), sc routing.Scenario, seed uint64) (int, error) {
	hdr, err := replay.NewLogHeader(meta)
	if err != nil {
		return 0, err
	}
	lw, err := trace.CreateLog(path, hdr)
	if err != nil {
		return 0, err
	}
	w, err := worldFor(0)
	if err != nil {
		lw.Close()
		return 0, err
	}
	sc.Tracer = lw
	sc.AnchorEvery = meta.AnchorEvery
	sc.Workers = 1 // sequential: reproducible log
	if _, err := routing.Run(w, sc, seed); err != nil {
		lw.Close()
		return 0, err
	}
	return lw.Count(), lw.Close()
}

// traceOneRun executes a single sequential run with tracing into path.
func traceOneRun(path string, worldFor func(int) (*network.World, error), sc routing.Scenario, seed uint64) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	w, err := worldFor(0)
	if err != nil {
		return err
	}
	tw := trace.NewWriter(f)
	sc.Tracer = tw
	sc.Workers = 1 // sequential: reproducible trace
	if _, err := routing.Run(w, sc, seed); err != nil {
		return err
	}
	// Close surfaces any encode error Emit swallowed during the run.
	return tw.Close()
}

func parsePolicy(s string) (core.PolicyKind, error) {
	switch s {
	case "random":
		return core.PolicyRandom, nil
	case "oldest", "oldest-node":
		return core.PolicyOldestNode, nil
	default:
		return 0, fmt.Errorf("unknown policy %q (want random, oldest)", s)
	}
}
