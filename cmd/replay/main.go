// Command replay works with binary simulation logs produced by
// `routing -binlog` / `mapping -binlog`: it reconstructs the world at any
// step from the nearest snapshot anchor plus the logged deltas, verifies a
// log bit-for-bit against a fresh simulation, and summarises the event
// stream without ever materialising it.
//
// Examples:
//
//	routing -runs 1 -binlog run.alog            # record
//	replay -log run.alog                        # header + stream summary
//	replay -log run.alog -step 120 -snapshot    # world state at step 120, as JSON
//	replay -log run.alog -step 120 -verify      # bit-compare step 120 vs fresh sim
//	replay -log run.alog -verify                # full lockstep verification
//	replay -log run.alog -summary               # measurement curves & fault steps
//
// Exit status: 0 on success, 1 on corruption or verification mismatch,
// 2 on usage errors.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"repro/internal/metrics"
	"repro/internal/replay"
	"repro/internal/trace"
	"repro/internal/viz"
)

func main() {
	var (
		logPath  = flag.String("log", "", "binary log to read (required)")
		step     = flag.Int("step", -1, "reconstruct the world at this step (0 = initial state)")
		snapshot = flag.Bool("snapshot", false, "print the reconstructed snapshot as JSON (needs -step)")
		verify   = flag.Bool("verify", false, "bit-compare against a fresh simulation (whole log, or just -step)")
		summary  = flag.Bool("summary", false, "print measurement curves and fault steps from the event stream")
	)
	flag.Parse()

	if *logPath == "" || flag.NArg() > 0 {
		fmt.Fprintln(os.Stderr, "usage: replay -log <file.alog> [-step N [-snapshot]] [-verify] [-summary]")
		os.Exit(2)
	}
	if *snapshot && *step < 0 {
		fmt.Fprintln(os.Stderr, "replay: -snapshot needs -step")
		os.Exit(2)
	}

	lr, closeLog, err := trace.OpenLog(*logPath)
	if err != nil {
		fail(err)
	}
	defer closeLog()
	reg := metrics.NewRegistry()
	lr.Instrument(reg)

	hdr := lr.Header()
	meta, metaErr := replay.MetaFromHeader(hdr)
	fmt.Printf("log: %s version=%d seed=%d confighash=%016x\n",
		*logPath, hdr.Version, hdr.BaseSeed, hdr.ConfigHash)
	if metaErr == nil {
		fmt.Printf("run: scenario=%s worldseed=%d seed=%d steps=%d faults=%q anchorevery=%d\n",
			meta.Scenario, meta.WorldSeed, meta.Seed, meta.Steps, meta.FaultPreset, meta.AnchorEvery)
	}

	if *step >= 0 {
		snap, err := replay.ReconstructAt(lr, *step)
		if err != nil {
			fail(err)
		}
		fmt.Printf("reconstructed step=%d nodes=%d\n", *step, len(snap.Positions))
		if *snapshot {
			b, err := json.Marshal(snap)
			if err != nil {
				fail(err)
			}
			os.Stdout.Write(append(b, '\n'))
		}
		if *verify {
			if metaErr != nil {
				fail(fmt.Errorf("cannot verify: log header has no run meta: %w", metaErr))
			}
			if err := replay.VerifyAt(lr, meta, *step); err != nil {
				fail(fmt.Errorf("step %d diverges from fresh simulation: %w", *step, err))
			}
			fmt.Printf("verify step=%d ok: reconstruction is bit-identical to a fresh simulation\n", *step)
		}
	} else if *verify {
		if metaErr != nil {
			fail(fmt.Errorf("cannot verify: log header has no run meta: %w", metaErr))
		}
		checked, err := replay.VerifyLog(lr, meta)
		if err != nil {
			fail(fmt.Errorf("log diverges from fresh simulation: %w", err))
		}
		fmt.Printf("verify ok: checked=%d records bit-identical to a fresh simulation\n", checked)
	}

	sum, err := replay.SummarizeLog(lr)
	if err != nil {
		fail(err)
	}
	fmt.Printf("events=%d steps=%d moves=%d meetings=%d deposits=%d measures=%d faults=%d blocks_read=%d\n",
		sum.Events, sum.Steps, sum.ByKind[trace.KindMove], sum.ByKind[trace.KindMeet],
		sum.ByKind[trace.KindDeposit], sum.ByKind[trace.KindMeasure], len(sum.FaultSteps),
		reg.Snapshot(nil).Counter("replay_blocks_read"))

	if *summary {
		for _, name := range sum.MeasureNames {
			curve := sum.MeasuresByName[name]
			if len(curve) == 0 {
				continue
			}
			fmt.Printf("\n%s curve (%d points):\n%s\nfinal value: %.3f\n",
				name, len(curve), viz.Sparkline(curve, 75), curve[len(curve)-1])
		}
		if len(sum.FaultSteps) > 0 {
			fmt.Printf("\nfault steps: %v\n", sum.FaultSteps)
			if rec, err := sum.Recovery("", 0.02); err == nil && len(rec.Events) > 0 {
				fmt.Printf("recovery (%s): %d/%d events recovered, mean %.2f steps, floor %.4f\n",
					sum.MeasureName, rec.Recovered, rec.Recovered+rec.Censored, rec.MeanSteps, rec.Floor)
			}
		}
		if sum.FinishStep >= 0 {
			fmt.Printf("\nrun finished at step %d\n", sum.FinishStep)
		}
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "replay:", err)
	os.Exit(1)
}
