// Command tracestat summarises a simulation trace: event counts,
// meeting-size distribution, per-agent activity, and the measurement
// curves as sparklines. It reads the JSONL traces of `mapping -trace` /
// `routing -trace` and, with -fromlog, the binary logs of `-binlog` —
// streaming the latter, so logs far larger than memory summarise fine.
//
//	go run ./cmd/routing -runs 1 -trace run.jsonl
//	go run ./cmd/tracestat run.jsonl
//	go run ./cmd/routing -runs 1 -binlog run.alog
//	go run ./cmd/tracestat -fromlog run.alog
package main

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"sort"

	"repro/internal/replay"
	"repro/internal/trace"
	"repro/internal/viz"
)

func main() {
	fromLog := flag.Bool("fromlog", false, "input is a binary log (routing/mapping -binlog), not JSONL")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: tracestat [-fromlog] <trace.jsonl | trace.alog>")
		os.Exit(2)
	}
	path := flag.Arg(0)

	var s replay.Summary
	if *fromLog {
		lr, closeLog, err := trace.OpenLog(path)
		if err != nil {
			fmt.Fprintln(os.Stderr, "tracestat:", err)
			os.Exit(1)
		}
		defer closeLog()
		s, err = replay.SummarizeLog(lr)
		if err != nil {
			fmt.Fprintf(os.Stderr, "tracestat: log %s is truncated or corrupt: %v\n", path, err)
			os.Exit(1)
		}
	} else {
		f, err := os.Open(path)
		if err != nil {
			fmt.Fprintln(os.Stderr, "tracestat:", err)
			os.Exit(1)
		}
		defer f.Close()
		events, err := trace.Read(f)
		if err != nil {
			// A decode error means a truncated or corrupt JSONL line; a partial
			// summary would silently misrepresent the run, so refuse loudly.
			fmt.Fprintf(os.Stderr,
				"tracestat: trace %s is truncated or corrupt: %v\n"+
					"tracestat: read %d valid events before the bad line; refusing to summarise a partial trace\n",
				path, err, len(events))
			if looksLikeBinaryLog(path) {
				fmt.Fprintf(os.Stderr, "tracestat: %s looks like a binary log — try: tracestat -fromlog %s\n", path, path)
			}
			os.Exit(1)
		}
		s = replay.Summarize(events)
	}
	if s.Events == 0 {
		fmt.Println("empty trace")
		return
	}
	printSummary(s)
}

// looksLikeBinaryLog sniffs the AMESHLOG magic so a binary log passed
// without -fromlog yields a helpful hint instead of a JSON error alone.
func looksLikeBinaryLog(path string) bool {
	f, err := os.Open(path)
	if err != nil {
		return false
	}
	defer f.Close()
	magic := make([]byte, 8)
	if _, err := f.Read(magic); err != nil {
		return false
	}
	return bytes.Equal(magic, []byte("AMESHLOG"))
}

func printSummary(s replay.Summary) {
	fmt.Println(s)
	fmt.Println()

	kinds := make([]string, 0, len(s.ByKind))
	for k := range s.ByKind {
		kinds = append(kinds, string(k))
	}
	sort.Strings(kinds)
	for _, k := range kinds {
		fmt.Printf("  %-8s %d\n", k, s.ByKind[trace.Kind(k)])
	}

	if sizes, counts := s.MeetingSizesSorted(); len(sizes) > 0 {
		fmt.Println("\nmeeting sizes:")
		labels := make([]string, len(sizes))
		values := make([]float64, len(sizes))
		for i, sz := range sizes {
			labels[i] = fmt.Sprintf("%d agents", sz)
			values[i] = float64(counts[i])
		}
		fmt.Print(viz.Bars(labels, values, 40))
	}

	if agents, total, min, max := s.MoveStats(); agents > 0 {
		fmt.Printf("\nagent activity: %d agents moved %d times (min %d, max %d per agent)\n",
			agents, total, min, max)
	}

	if len(s.DepositsPerStep) > 0 {
		series := make([]float64, len(s.DepositsPerStep))
		peak := 0.0
		for i, d := range s.DepositsPerStep {
			series[i] = float64(d)
			if series[i] > peak {
				peak = series[i]
			}
		}
		if peak > 0 {
			for i := range series {
				series[i] /= peak
			}
		}
		fmt.Printf("\ndeposits per step (peak %d):\n%s\n", int(peak), viz.Sparkline(series, 75))
	}

	for _, name := range s.MeasureNames {
		curve := s.MeasuresByName[name]
		if len(curve) == 0 {
			continue
		}
		label := name
		if label == "" {
			label = "measurement"
		}
		fmt.Printf("\n%s curve (%d points):\n%s\n",
			label, len(curve), viz.Sparkline(curve, 75))
		fmt.Printf("final value: %.3f\n", curve[len(curve)-1])
	}
	if len(s.FaultSteps) > 0 {
		fmt.Printf("\nfault steps: %v\n", s.FaultSteps)
	}
	if s.FinishStep >= 0 {
		fmt.Printf("\nrun finished at step %d\n", s.FinishStep)
	}
}
