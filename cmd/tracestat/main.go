// Command tracestat summarises a JSONL simulation trace produced by
// `mapping -trace` or `routing -trace`: event counts, meeting-size
// distribution, per-agent activity, and the measurement curve as a
// sparkline.
//
//	go run ./cmd/routing -runs 1 -trace run.jsonl
//	go run ./cmd/tracestat run.jsonl
package main

import (
	"fmt"
	"os"
	"sort"

	"repro/internal/replay"
	"repro/internal/trace"
	"repro/internal/viz"
)

func main() {
	if len(os.Args) != 2 {
		fmt.Fprintln(os.Stderr, "usage: tracestat <trace.jsonl>")
		os.Exit(2)
	}
	f, err := os.Open(os.Args[1])
	if err != nil {
		fmt.Fprintln(os.Stderr, "tracestat:", err)
		os.Exit(1)
	}
	defer f.Close()
	events, err := trace.Read(f)
	if err != nil {
		// A decode error means a truncated or corrupt JSONL line; a partial
		// summary would silently misrepresent the run, so refuse loudly.
		fmt.Fprintf(os.Stderr,
			"tracestat: trace %s is truncated or corrupt: %v\n"+
				"tracestat: read %d valid events before the bad line; refusing to summarise a partial trace\n",
			os.Args[1], err, len(events))
		os.Exit(1)
	}
	if len(events) == 0 {
		fmt.Println("empty trace")
		return
	}
	s := replay.Summarize(events)
	fmt.Println(s)
	fmt.Println()

	kinds := make([]string, 0, len(s.ByKind))
	for k := range s.ByKind {
		kinds = append(kinds, string(k))
	}
	sort.Strings(kinds)
	for _, k := range kinds {
		fmt.Printf("  %-8s %d\n", k, s.ByKind[trace.Kind(k)])
	}

	if sizes, counts := s.MeetingSizesSorted(); len(sizes) > 0 {
		fmt.Println("\nmeeting sizes:")
		labels := make([]string, len(sizes))
		values := make([]float64, len(sizes))
		for i, sz := range sizes {
			labels[i] = fmt.Sprintf("%d agents", sz)
			values[i] = float64(counts[i])
		}
		fmt.Print(viz.Bars(labels, values, 40))
	}

	if agents, total, min, max := s.MoveStats(); agents > 0 {
		fmt.Printf("\nagent activity: %d agents moved %d times (min %d, max %d per agent)\n",
			agents, total, min, max)
	}

	if deposits := replay.DepositsPerStep(events); len(deposits) > 0 {
		series := make([]float64, len(deposits))
		peak := 0.0
		for i, d := range deposits {
			series[i] = float64(d)
			if series[i] > peak {
				peak = series[i]
			}
		}
		if peak > 0 {
			for i := range series {
				series[i] /= peak
			}
		}
		fmt.Printf("\ndeposits per step (peak %d):\n%s\n", int(peak), viz.Sparkline(series, 75))
	}

	for _, name := range s.MeasureNames {
		curve := s.MeasuresByName[name]
		if len(curve) == 0 {
			continue
		}
		label := name
		if label == "" {
			label = "measurement"
		}
		fmt.Printf("\n%s curve (%d points):\n%s\n",
			label, len(curve), viz.Sparkline(curve, 75))
		fmt.Printf("final value: %.3f\n", curve[len(curve)-1])
	}
	if s.FinishStep >= 0 {
		fmt.Printf("\nrun finished at step %d\n", s.FinishStep)
	}
}
